//! The multiprocessor machine and its configuration.

use crate::report::RunReport;
use mcsim_consistency::Model;
use mcsim_guard::{GuardConfig, SimError, StallReport};
use mcsim_isa::{Addr, Program};
use mcsim_mem::{MemConfig, MemQuiescence, MemorySystem};
use mcsim_proc::{ProcConfig, ProcQuiescence, Processor, Techniques};
use mcsim_trace::{merge_traces, DEFAULT_CAPACITY};
use serde::{Deserialize, Serialize};

/// Everything needed to build a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Consistency model every core enforces.
    pub model: Model,
    /// The paper's technique switches (applied to every core).
    pub techniques: Techniques,
    /// Core microarchitecture (its `techniques` field is overridden by
    /// [`MachineConfig::techniques`] at build time).
    pub proc: ProcConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Safety bound: the run aborts (with `timed_out` set in the report)
    /// after this many cycles.
    pub max_cycles: u64,
    /// Record per-core event traces (Figure 5 style).
    pub trace: bool,
    /// Runtime-verification settings: invariant-check cadence, the
    /// forward-progress watchdog, and fault injection.
    pub guard: GuardConfig,
}

impl MachineConfig {
    /// The paper's calibration: ideal frontend, 1-cycle hits, 100-cycle
    /// clean misses, invalidation protocol, SC with both techniques off.
    #[must_use]
    pub fn paper() -> Self {
        MachineConfig {
            model: Model::Sc,
            techniques: Techniques::NONE,
            proc: ProcConfig::paper(Techniques::NONE),
            mem: MemConfig::paper(),
            max_cycles: 2_000_000,
            trace: false,
            guard: GuardConfig::default(),
        }
    }

    /// Paper calibration with a chosen model and techniques.
    #[must_use]
    pub fn paper_with(model: Model, techniques: Techniques) -> Self {
        MachineConfig {
            model,
            techniques,
            proc: ProcConfig::paper(techniques),
            ..Self::paper()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

/// Wall-clock-side telemetry of one run: how many cycles were actually
/// stepped versus fast-forwarded. Kept out of [`RunReport`] (and never
/// serialized into sweep result artifacts) because it describes *how*
/// the simulation ran, not *what* it computed — the report itself is
/// bit-identical whichever way the cycles were covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Cycles simulated by a full [`Machine::step`].
    pub stepped_cycles: u64,
    /// Cycles covered by event-horizon fast-forwarding.
    pub skipped_cycles: u64,
    /// Number of contiguous fast-forwarded spans.
    pub spans: u64,
}

impl RunTelemetry {
    /// Simulated-cycles per stepped-cycle — the fast-forward speedup
    /// expressed machine-independently (1.0 when nothing was skipped).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let total = self.stepped_cycles + self.skipped_cycles;
        if self.stepped_cycles == 0 {
            1.0
        } else {
            total as f64 / self.stepped_cycles as f64
        }
    }
}

/// Per-step fingerprints of every component's mutable state. When a full
/// step leaves all of them unchanged, the machine is quiescent: nothing
/// will happen until the next scheduled event, so the cycles in between
/// can be accounted in bulk instead of simulated one at a time.
#[derive(Debug)]
struct Fingerprint {
    mem: MemQuiescence,
    procs: Vec<ProcQuiescence>,
}

impl Fingerprint {
    fn capture(mem: &MemorySystem, procs: &[Processor]) -> Self {
        Fingerprint {
            mem: mem.quiescence(),
            procs: procs.iter().map(Processor::quiescence).collect(),
        }
    }

    /// Replaces every slot with the current state (no short-circuiting:
    /// the stored fingerprint must always describe the latest step) and
    /// reports whether nothing changed.
    fn refresh(&mut self, mem: &MemorySystem, procs: &[Processor]) -> bool {
        let mut unchanged = true;
        let mq = mem.quiescence();
        unchanged &= mq == self.mem;
        self.mem = mq;
        for (slot, p) in self.procs.iter_mut().zip(procs) {
            let q = p.quiescence();
            unchanged &= q == *slot;
            *slot = q;
        }
        unchanged
    }
}

/// A shared-memory multiprocessor: one program per processor.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    procs: Vec<Processor>,
    cycle: u64,
    /// Event-horizon fast-forwarding (on by default). A runtime switch —
    /// deliberately not part of [`MachineConfig`], whose serialized form
    /// is embedded in sweep artifacts that must not change — because it
    /// alters only wall-clock time, never the report.
    fast_forward: bool,
}

impl Machine {
    /// Builds a machine with one core per program.
    ///
    /// # Panics
    /// If `programs` is empty or a configuration is invalid.
    #[must_use]
    pub fn new(cfg: MachineConfig, programs: Vec<Program>) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        let mut mem = MemorySystem::new(cfg.mem, programs.len());
        if let Some(kind) = cfg.guard.fault {
            mem.arm_fault(kind);
        }
        if cfg.trace {
            mem.enable_trace(DEFAULT_CAPACITY);
        }
        let mut proc_cfg = cfg.proc;
        proc_cfg.techniques = cfg.techniques;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(i, prog)| {
                let mut p = Processor::new(i, proc_cfg, cfg.model, prog);
                if cfg.trace {
                    p.enable_trace(DEFAULT_CAPACITY);
                }
                p
            })
            .collect();
        Machine {
            cfg,
            mem,
            procs,
            cycle: 0,
            fast_forward: true,
        }
    }

    /// Enables or disables event-horizon fast-forwarding (the
    /// `--no-fast-forward` escape hatch). The produced [`RunReport`] is
    /// bit-identical either way; only wall-clock time differs.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of processors.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Writes the initial memory image (call before running).
    pub fn write_memory(&mut self, addr: impl Into<Addr>, value: u64) {
        self.mem.write_initial(addr.into(), value);
    }

    /// Pre-warms a processor's cache with a line (the paper's examples
    /// assume, e.g., `read D (hit)`).
    pub fn preload_cache(&mut self, proc: usize, addr: impl Into<Addr>, exclusive: bool) {
        self.mem.preload(proc, addr.into(), exclusive);
    }

    /// The coherent value of an address right now.
    #[must_use]
    pub fn read_memory(&self, addr: impl Into<Addr>) -> u64 {
        self.mem.read_coherent(addr.into())
    }

    /// Access to a core (for inspecting registers/stats mid-run).
    #[must_use]
    pub fn proc(&self, i: usize) -> &Processor {
        &self.procs[i]
    }

    /// The memory system (for inspecting stats mid-run).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one cycle; returns `true` when every core has halted.
    pub fn step(&mut self) -> bool {
        self.mem.tick(self.cycle);
        let mut all_halted = true;
        for p in &mut self.procs {
            p.tick(self.cycle, &mut self.mem);
            all_halted &= p.halted();
        }
        self.cycle += 1;
        all_halted
    }

    /// Takes the first structured fault recorded anywhere in the machine
    /// (memory system first, then cores in index order).
    pub fn poll_fault(&mut self) -> Option<SimError> {
        if let Some(e) = self.mem.take_fault() {
            return Some(e);
        }
        self.procs.iter_mut().find_map(Processor::take_fault)
    }

    /// Runs the full invariant catalog once: coherence/directory/MSHR
    /// agreement in the memory system, then each core's buffer ordering.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        self.mem.check_invariants()?;
        for p in &self.procs {
            p.check_invariants(self.cycle)?;
        }
        Ok(())
    }

    /// Runs to completion (or `max_cycles`) and produces the report.
    ///
    /// Structured failures — a protocol-contract fault, an invariant
    /// violation, or the forward-progress watchdog firing — stop the run
    /// and land in [`RunReport::failure`] instead of unwinding.
    #[must_use]
    pub fn run(self) -> RunReport {
        self.run_telemetry().0
    }

    /// The machine-wide event horizon: the earliest future cycle at which
    /// any component can change state on its own. `None` when nothing is
    /// scheduled anywhere (a silent machine can only deadlock or time
    /// out).
    fn next_event(&self) -> Option<u64> {
        let mut horizon = self.mem.next_event();
        for p in &self.procs {
            horizon = match (horizon, p.next_event(self.cycle)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (h, other) => h.or(other),
            };
        }
        horizon
    }

    /// Like [`Self::run`], but also reports how the cycles were covered
    /// (stepped vs. fast-forwarded).
    #[must_use]
    pub fn run_telemetry(mut self) -> (RunReport, RunTelemetry) {
        let every_cycle = cfg!(any(feature = "strict-invariants", debug_assertions));
        let period = self.cfg.guard.effective_period(every_cycle);
        let mut watchdog = Watchdog::new(self.cfg.guard.watchdog_window, &self.procs);
        let mut telemetry = RunTelemetry::default();
        let mut timed_out = true;
        let mut failure = None;
        let mut fingerprint = self
            .fast_forward
            .then(|| Fingerprint::capture(&self.mem, &self.procs));
        while self.cycle < self.cfg.max_cycles {
            if self.step() {
                telemetry.stepped_cycles += 1;
                timed_out = false;
                // Final-state audit: a fault or violation landing on the
                // very cycle the last core halts (e.g. a tainted grant
                // arriving as the writer retires) must not pass as a
                // clean run, whatever the checking cadence.
                failure = self
                    .poll_fault()
                    .or_else(|| period.and_then(|_| self.check_invariants().err()));
                break;
            }
            telemetry.stepped_cycles += 1;
            if let Some(e) = self.poll_fault() {
                failure = Some(e);
                timed_out = false;
                break;
            }
            if period.is_some_and(|n| self.cycle.is_multiple_of(n)) {
                if let Err(e) = self.check_invariants() {
                    failure = Some(e);
                    timed_out = false;
                    break;
                }
            }
            if let Some((edge, report)) = watchdog.observe_up_to(self.cycle, &self.procs, &self.mem)
            {
                failure = Some(SimError::no_progress(edge, report));
                timed_out = false;
                break;
            }
            if let Some(fp) = &mut fingerprint {
                if fp.refresh(&self.mem, &self.procs) {
                    if let Err(e) = self.fast_forward_span(period, &mut watchdog, &mut telemetry) {
                        failure = Some(e);
                        timed_out = false;
                        break;
                    }
                }
            }
        }
        (self.into_report_with(timed_out, failure), telemetry)
    }

    /// Jumps from the current (quiescent) cycle to the event horizon,
    /// replaying everything the skipped per-cycle iterations would have
    /// done: per-cause breakdown accounting, the invariant-check cadence,
    /// and watchdog window edges — in their exact per-cycle order, so the
    /// resulting report (success or failure) is bit-identical to stepping.
    ///
    /// The machine's state is frozen across the whole span (that is what
    /// quiescence means), which is what makes the replay exact:
    /// - every skipped cycle classifies into the same breakdown bucket as
    ///   the quiescent cycle that opened the span;
    /// - the first in-span invariant check's verdict holds for all later
    ///   multiples, so one check suffices;
    /// - no new fault can be recorded (faults are set only by mutations),
    ///   so per-cycle fault polling needs no replay;
    /// - a watchdog edge samples exactly the values per-cycle sampling
    ///   would have seen.
    ///
    /// Per-cycle check order at an equal cycle is invariants before the
    /// watchdog, which the segmentation below preserves.
    fn fast_forward_span(
        &mut self,
        period: Option<u64>,
        watchdog: &mut Watchdog,
        telemetry: &mut RunTelemetry,
    ) -> Result<(), SimError> {
        let max = self.cfg.max_cycles;
        let start = self.cycle;
        // The step at the horizon cycle consumes the event; steps strictly
        // before it are frozen. Capping at `max_cycles` makes a timeout
        // span land exactly where per-cycle stepping would stop, with the
        // loop-body checks at `cycle == max_cycles` still replayed.
        let target = self.next_event().unwrap_or(max).min(max);
        if target <= start {
            return Ok(());
        }
        telemetry.spans += 1;
        // Checks the skipped iterations would have run happen at cycle
        // values in (start, target]; the check at `start` already ran.
        let inv_at = period.and_then(|n| {
            let m = (start / n + 1).saturating_mul(n);
            (m <= target).then_some(m)
        });
        let mut accounted_to = start;
        let mut advance = |machine: &mut Machine, to: u64| {
            for p in &mut machine.procs {
                p.account_skipped(to - accounted_to);
            }
            telemetry.skipped_cycles += to - accounted_to;
            accounted_to = to;
            machine.cycle = to;
        };
        // Watchdog edges strictly before the invariant check's cycle.
        let pre_limit = inv_at.map_or(target, |m| m - 1);
        if let Some((edge, report)) = watchdog.observe_up_to(pre_limit, &self.procs, &self.mem) {
            advance(self, edge);
            return Err(SimError::no_progress(edge, report));
        }
        if let Some(m) = inv_at {
            advance(self, m);
            // Per-cycle mode reaches the check at cycle `m` with the
            // memory system last ticked at `m - 1`; error cycle stamps
            // must match. Ticking is side-effect-free here: no scheduled
            // event is due before the horizon and the directory queue is
            // drained (quiescent), so only its clock moves.
            let emitted_before = self.mem.trace_emitted();
            self.mem.tick(m - 1);
            // Quiescent spans emit no trace events by construction — the
            // emission counters are part of the quiescence fingerprints,
            // and the in-span tick above must not move them either, or
            // traces would diverge between stepping and fast-forwarding.
            debug_assert_eq!(
                self.mem.trace_emitted(),
                emitted_before,
                "fast-forwarded span emitted trace events"
            );
            self.check_invariants()?;
        }
        if let Some((edge, report)) = watchdog.observe_up_to(target, &self.procs, &self.mem) {
            advance(self, edge);
            return Err(SimError::no_progress(edge, report));
        }
        advance(self, target);
        Ok(())
    }

    /// Finalizes a (possibly manually stepped) machine into a report.
    #[must_use]
    pub fn into_report(self, timed_out: bool) -> RunReport {
        self.into_report_with(timed_out, None)
    }

    fn into_report_with(mut self, timed_out: bool, failure: Option<SimError>) -> RunReport {
        // A cut-off run has cores that never halted; their `halted_at` is
        // meaningless (zero), so report how far the machine actually got:
        // up to the first violation on failure, the full budget on
        // timeout.
        let cycles = if let Some(f) = &failure {
            f.cycle
        } else if timed_out {
            self.cycle
        } else {
            self.procs
                .iter()
                .map(|p| p.stats().halted_at)
                .max()
                .unwrap_or(0)
        };
        let per_proc: Vec<_> = self.procs.iter().map(|p| *p.stats()).collect();
        let mut total = mcsim_proc::ProcStats::default();
        for s in &per_proc {
            total.merge(s);
        }
        let regfiles = self.procs.iter().map(|p| p.regfile().clone()).collect();
        let trace_dropped =
            self.mem.trace_dropped() + self.procs.iter().map(Processor::trace_dropped).sum::<u64>();
        let trace = merge_traces(
            self.mem.take_trace(),
            self.procs.iter_mut().map(Processor::take_trace).collect(),
        );
        RunReport {
            cycles,
            timed_out,
            failure,
            per_proc,
            total,
            mem: *self.mem.stats(),
            regfiles,
            trace,
            trace_dropped,
            memory: self.mem.snapshot_coherent(),
        }
    }
}

/// The forward-progress watchdog: windowed sampling of retirement and
/// coherence activity. It fires only when a *full* window passes with no
/// instruction retired on any core, no memory-system activity of any
/// kind, and nothing in flight at the window edge — a state the machine
/// can never leave on its own. Long-but-progressing runs (e.g. a spin
/// loop, which retires its polling instructions) never trip it; they are
/// left to the plain `max_cycles` timeout.
#[derive(Debug)]
struct Watchdog {
    window: u64,
    /// The next cycle at which a window closes. Tracked explicitly (rather
    /// than testing `cycle % window == 0`) so that edges falling inside a
    /// fast-forwarded span are still sampled: callers report how far time
    /// has advanced and every edge up to that point is processed in order.
    next_edge: u64,
    committed: u64,
    activity: u64,
    /// Per-core fetch PCs at the last window edge (a moving frontend with
    /// no retirement is the livelock signature).
    pcs: Vec<u32>,
    /// Total speculation churn (rollbacks + reissues) at the last edge.
    churn: u64,
}

impl Watchdog {
    fn new(window: u64, procs: &[Processor]) -> Self {
        Watchdog {
            window,
            next_edge: window,
            committed: 0,
            activity: 0,
            pcs: procs.iter().map(Processor::fetch_pc).collect(),
            churn: 0,
        }
    }

    fn totals(procs: &[Processor]) -> (u64, u64) {
        let committed = procs.iter().map(|p| p.stats().committed).sum();
        let churn = procs
            .iter()
            .map(|p| p.stats().rollbacks + p.stats().reissues)
            .sum();
        (committed, churn)
    }

    /// Processes every window edge at or before `cycle`, in order; returns
    /// the first edge whose just-closed window was completely silent,
    /// along with its stall report. With one edge per call this is the
    /// classic per-cycle sampler; across a fast-forwarded span it replays
    /// each covered edge against the (frozen) machine state, which is
    /// exactly what per-cycle sampling would have observed.
    fn observe_up_to(
        &mut self,
        cycle: u64,
        procs: &[Processor],
        mem: &MemorySystem,
    ) -> Option<(u64, StallReport)> {
        if self.window == 0 {
            return None;
        }
        while self.next_edge <= cycle {
            let edge = self.next_edge;
            let (committed, churn) = Self::totals(procs);
            let activity = mem.activity();
            let pcs: Vec<u32> = procs.iter().map(Processor::fetch_pc).collect();
            let silent =
                committed == self.committed && activity == self.activity && mem.in_flight() == 0;
            let report = silent.then(|| {
                let frontend_moved = pcs != self.pcs;
                let speculation_churned = churn != self.churn;
                StallReport {
                    class: StallReport::classify(frontend_moved, speculation_churned),
                    window: self.window,
                    since_cycle: edge - self.window,
                    stalled: procs
                        .iter()
                        .filter(|p| !p.halted())
                        .map(Processor::stall_snapshot)
                        .collect(),
                }
            });
            self.committed = committed;
            self.activity = activity;
            self.pcs = pcs;
            self.churn = churn;
            self.next_edge += self.window;
            if let Some(report) = report {
                return Some((edge, report));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::{R1, R2};
    use mcsim_isa::ProgramBuilder;

    #[test]
    fn two_processor_message_passing_eventually_delivers() {
        // P0: data = 42; flag = 1 (release).
        // P1: spin flag == 1 (acquire); read data.
        let p0 = ProgramBuilder::new("producer")
            .store(0x1000u64, 42u64)
            .store_release(0x2000u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("consumer")
            .spin_until(0x2000, 1, R1)
            .load(R2, 0x1000u64)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let cfg = MachineConfig::paper_with(model, t);
                let report = Machine::new(cfg, vec![p0.clone(), p1.clone()]).run();
                assert!(!report.timed_out, "{model}/{t} timed out");
                assert_eq!(report.reg(1, R2), 42, "{model}/{t}: data must follow flag");
            }
        }
    }

    #[test]
    fn single_core_report_fields() {
        let prog = ProgramBuilder::new("t")
            .store(0x100u64, 5u64)
            .halt()
            .build()
            .unwrap();
        let report = Machine::new(MachineConfig::paper(), vec![prog]).run();
        assert!(!report.timed_out);
        assert_eq!(report.per_proc.len(), 1);
        assert!(report.cycles >= 100);
        assert_eq!(report.total.stores, 1);
    }

    #[test]
    fn timeout_reported() {
        // A genuine infinite spin: flag never set.
        let prog = ProgramBuilder::new("t")
            .spin_until(0x2000, 1, R1)
            .halt()
            .build()
            .unwrap();
        let mut cfg = MachineConfig::paper_with(Model::Rc, Techniques::BOTH);
        cfg.max_cycles = 5_000;
        let report = Machine::new(cfg, vec![prog]).run();
        assert!(report.timed_out);
        // Regression: a timed-out run used to report `cycles` from the
        // `halted_at` of cores that never halted (i.e. 0); it must report
        // how far the machine actually got.
        assert_eq!(report.cycles, 5_000);
        assert!(
            report.failure.is_none(),
            "a progressing spin is a plain timeout, not a watchdog failure"
        );
    }

    #[test]
    fn preload_makes_first_access_hit() {
        let prog = ProgramBuilder::new("t")
            .load(R1, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let mut m = Machine::new(MachineConfig::paper(), vec![prog]);
        m.write_memory(0x100u64, 9);
        m.preload_cache(0, 0x100u64, false);
        let report = m.run();
        assert_eq!(report.reg(0, R1), 9);
        assert!(report.cycles < 10, "preloaded line hits: {}", report.cycles);
        assert_eq!(report.mem.demand_hits, 1);
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        // Both processors increment a counter under a lock; the final
        // value must be exactly 2 under every model/technique combination
        // (atomicity + mutual exclusion).
        let worker = |name: &str| {
            ProgramBuilder::new(name)
                .lock(0x40, R1)
                .load(R2, 0x1000u64)
                .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
                .store(0x1000u64, R2)
                .unlock(0x40)
                .halt()
                .build()
                .unwrap()
        };
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let cfg = MachineConfig::paper_with(model, t);
                let mut m = Machine::new(cfg, vec![worker("w0"), worker("w1")]);
                m.write_memory(0x1000u64, 0);
                let report = m.run();
                assert!(!report.timed_out, "{model}/{t}");
                assert_eq!(
                    report.mem_word(0x1000),
                    2,
                    "{model}/{t}: lost update — mutual exclusion broken"
                );
                assert_eq!(report.mem_word(0x40), 0, "{model}/{t}: lock released");
            }
        }
    }
}
