//! The sequential-consistency oracle.
//!
//! Lamport's definition: an execution is sequentially consistent when its
//! result equals that of *some* interleaving of the per-processor
//! programs executed one-instruction-at-a-time against an atomic memory.
//! This module enumerates all such interleavings by exhaustive DFS over
//! the machine-state graph (with visited-state pruning, so spin loops
//! terminate) and returns the set of reachable final states.
//!
//! Litmus tests use it as the correctness backstop: every simulated
//! execution under SC — with prefetching, speculative loads, or both —
//! must land in this set. Executions under relaxed models of *data-race-
//! free* programs must land in it too (§5 of the paper: RC architectures
//! provide SC for programs free of data races).

use mcsim_isa::{Instr, Program, NUM_REGS};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Bounds for the exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Maximum distinct machine states to explore before giving up.
    pub max_states: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_states: 2_000_000,
        }
    }
}

/// A final machine state: registers per processor plus touched memory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Outcome {
    /// Final register values, `regs[proc][reg]`.
    pub regs: Vec<Vec<u64>>,
    /// Final values of every address any interleaving wrote (reads do not
    /// appear), plus the initial image.
    pub memory: BTreeMap<u64, u64>,
}

impl Outcome {
    /// Register value accessor.
    #[must_use]
    pub fn reg(&self, proc: usize, r: mcsim_isa::RegId) -> u64 {
        self.regs[proc][r.index()]
    }

    /// Memory value (0 if untouched).
    #[must_use]
    pub fn mem(&self, addr: u64) -> u64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }
}

/// The enumeration result.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// Reachable final states.
    pub outcomes: BTreeSet<Outcome>,
    /// Whether the state space was exhausted (false = `max_states` hit;
    /// the outcome set is a subset).
    pub complete: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    pcs: Vec<u32>,
    regs: Vec<Vec<u64>>,
    mem: Vec<(u64, u64)>, // sorted — hashable form of the map
}

impl State {
    fn mem_map(&self) -> BTreeMap<u64, u64> {
        self.mem.iter().copied().collect()
    }
}

fn halted(prog: &Program, pc: u32) -> bool {
    matches!(prog.fetch(pc as usize), Some(Instr::Halt) | None)
}

/// Executes one instruction of processor `p` atomically. Returns `false`
/// if the processor is already halted.
fn step(programs: &[Program], st: &State, p: usize) -> Option<State> {
    let prog = &programs[p];
    let pc = st.pcs[p];
    let instr = prog.fetch(pc as usize)?;
    if matches!(instr, Instr::Halt) {
        return None;
    }
    let mut mem = st.mem_map();
    let mut regs = st.regs.clone();
    let mut pcs = st.pcs.clone();
    let read_reg = |regs: &Vec<Vec<u64>>, r: mcsim_isa::RegId| regs[p][r.index()];
    let read_op = |regs: &Vec<Vec<u64>>, o: &mcsim_isa::Operand| match o {
        mcsim_isa::Operand::Imm(v) => *v,
        mcsim_isa::Operand::Reg(r) => regs[p][r.index()],
    };
    match instr {
        Instr::Load { dst, addr, .. } => {
            let a = addr.eval(|r| read_reg(&regs, r)).0;
            regs[p][dst.index()] = mem.get(&a).copied().unwrap_or(0);
            pcs[p] = pc + 1;
        }
        Instr::Store { addr, src, .. } => {
            let a = addr.eval(|r| read_reg(&regs, r)).0;
            let v = read_op(&regs, src);
            mem.insert(a, v);
            pcs[p] = pc + 1;
        }
        Instr::Rmw {
            dst,
            addr,
            kind,
            src,
            ..
        } => {
            let a = addr.eval(|r| read_reg(&regs, r)).0;
            let old = mem.get(&a).copied().unwrap_or(0);
            let operand = read_op(&regs, src);
            mem.insert(a, kind.new_value(old, operand));
            regs[p][dst.index()] = old;
            pcs[p] = pc + 1;
        }
        Instr::Alu {
            dst, op, lhs, rhs, ..
        } => {
            let v = op.apply(read_op(&regs, lhs), read_op(&regs, rhs));
            regs[p][dst.index()] = v;
            pcs[p] = pc + 1;
        }
        Instr::Branch {
            cond,
            lhs,
            rhs,
            target,
            ..
        } => {
            let taken = cond.apply(read_op(&regs, lhs), read_op(&regs, rhs));
            pcs[p] = if taken { *target } else { pc + 1 };
        }
        Instr::Jump { target } => {
            pcs[p] = *target;
        }
        Instr::Prefetch { .. } | Instr::Nop => {
            // Prefetches are non-binding hints: no architectural effect.
            pcs[p] = pc + 1;
        }
        Instr::Halt => unreachable!("handled above"),
    }
    Some(State {
        pcs,
        regs,
        mem: mem.into_iter().collect(),
    })
}

/// Enumerates every sequentially consistent final state of `programs`
/// from the given initial memory image.
#[must_use]
pub fn sc_outcomes(
    programs: &[Program],
    init_mem: &BTreeMap<u64, u64>,
    cfg: OracleConfig,
) -> OracleResult {
    let start = State {
        pcs: vec![0; programs.len()],
        regs: vec![vec![0; NUM_REGS]; programs.len()],
        mem: init_mem.iter().map(|(&a, &v)| (a, v)).collect(),
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut outcomes = BTreeSet::new();
    let mut stack = vec![start.clone()];
    visited.insert(start);
    let mut complete = true;
    while let Some(st) = stack.pop() {
        if visited.len() > cfg.max_states {
            complete = false;
            break;
        }
        let mut terminal = true;
        for p in 0..programs.len() {
            if halted(&programs[p], st.pcs[p]) {
                continue;
            }
            terminal = false;
            if let Some(next) = step(programs, &st, p) {
                if visited.insert(next.clone()) {
                    stack.push(next);
                }
            }
        }
        if terminal {
            outcomes.insert(Outcome {
                regs: st.regs.clone(),
                memory: st.mem_map(),
            });
        }
    }
    OracleResult { outcomes, complete }
}

/// Executes a single program sequentially to completion (the
/// single-processor special case — handy as a reference semantics).
#[must_use]
pub fn run_sequential(program: &Program, init_mem: &BTreeMap<u64, u64>) -> Outcome {
    let r = sc_outcomes(
        std::slice::from_ref(program),
        init_mem,
        OracleConfig::default(),
    );
    assert!(r.complete, "single program exceeded oracle bounds");
    assert_eq!(
        r.outcomes.len(),
        1,
        "a deterministic single program has exactly one outcome"
    );
    r.outcomes.into_iter().next().expect("checked")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::{R1, R2};
    use mcsim_isa::ProgramBuilder;

    fn mem0() -> BTreeMap<u64, u64> {
        BTreeMap::new()
    }

    #[test]
    fn sequential_execution() {
        let p = ProgramBuilder::new("t")
            .store(0x10u64, 4u64)
            .load(R1, 0x10u64)
            .alu(R2, mcsim_isa::AluOp::Mul, R1, 3u64)
            .halt()
            .build()
            .unwrap();
        let o = run_sequential(&p, &mem0());
        assert_eq!(o.reg(0, R2), 12);
        assert_eq!(o.mem(0x10), 4);
    }

    #[test]
    fn store_buffering_outcome_is_not_sc() {
        // The classic SB litmus: P0: x=1; r1=y.  P1: y=1; r2=x.
        // SC forbids r1 == r2 == 0.
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .load(R1, 0x200u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x200u64, 1u64)
            .load(R1, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig::default());
        assert!(r.complete);
        assert!(
            !r.outcomes
                .iter()
                .any(|o| o.reg(0, R1) == 0 && o.reg(1, R1) == 0),
            "SC forbids both loads reading 0"
        );
        // The three other combinations are all reachable.
        for want in [(0, 1), (1, 0), (1, 1)] {
            assert!(
                r.outcomes
                    .iter()
                    .any(|o| (o.reg(0, R1), o.reg(1, R1)) == want),
                "outcome {want:?} should be SC-reachable"
            );
        }
    }

    #[test]
    fn message_passing_with_spin_converges() {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 42u64)
            .store_release(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .spin_until(0x200, 1, R1)
            .load(R2, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig::default());
        assert!(r.complete, "spin loop pruned by visited-state detection");
        // Every terminal state has the consumer seeing the data.
        for o in &r.outcomes {
            assert_eq!(o.reg(1, R2), 42);
        }
        assert!(!r.outcomes.is_empty());
    }

    #[test]
    fn lock_counter_has_unique_outcome() {
        let worker = || {
            ProgramBuilder::new("w")
                .lock(0x40, R1)
                .load(R2, 0x1000u64)
                .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
                .store(0x1000u64, R2)
                .unlock(0x40)
                .halt()
                .build()
                .unwrap()
        };
        let r = sc_outcomes(&[worker(), worker()], &mem0(), OracleConfig::default());
        assert!(r.complete);
        for o in &r.outcomes {
            assert_eq!(o.mem(0x1000), 2, "critical sections must not interleave");
        }
    }

    #[test]
    fn incomplete_flag_on_tiny_budget() {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .store(0x108u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x110u64, 1u64)
            .store(0x118u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig { max_states: 3 });
        assert!(!r.complete);
    }
}
