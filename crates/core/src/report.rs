//! Run results.

use mcsim_guard::SimError;
use mcsim_isa::reg::RegFile;
use mcsim_isa::RegId;
use mcsim_mem::MemStats;
use mcsim_proc::ProcStats;
use mcsim_trace::TraceEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything a finished run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Cycle at which the last core drained (the paper's "the accesses
    /// take N cycles to perform").
    pub cycles: u64,
    /// The run hit `max_cycles` before every core halted.
    pub timed_out: bool,
    /// Structured failure that stopped the run early: a protocol fault,
    /// an invariant violation, or the forward-progress watchdog firing.
    /// `None` for clean (and plain timed-out) runs.
    pub failure: Option<SimError>,
    /// Per-core counters.
    pub per_proc: Vec<ProcStats>,
    /// Machine-wide totals.
    pub total: ProcStats,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Final architectural register files.
    pub regfiles: Vec<RegFile>,
    /// The merged machine-wide event trace, sorted by cycle with the
    /// memory system's events ahead of the cores' within a cycle — the
    /// exact global emission order (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Events evicted from the bounded trace rings (0 unless a run
    /// outgrew the ring capacity; the kept tail is still exact).
    pub trace_dropped: u64,
    /// Coherent final memory image (word address → value) over every
    /// touched line.
    pub memory: BTreeMap<u64, u64>,
}

impl RunReport {
    /// A committed register value.
    #[must_use]
    pub fn reg(&self, proc: usize, r: RegId) -> u64 {
        self.regfiles[proc].read(r)
    }

    /// A final memory word (0 if untouched).
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> u64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }

    /// One-line summary for logs.
    #[must_use]
    pub fn summary(&self) -> String {
        let status = if self.failure.is_some() {
            " (FAILED)"
        } else if self.timed_out {
            " (TIMED OUT)"
        } else {
            ""
        };
        // A run with no demand accesses has no hit rate — "0.0%" would be
        // indistinguishable from a true all-miss run.
        let hit_rate = if self.mem.demand_accesses() == 0 {
            "n/a".to_string()
        } else {
            format!("{:.1}%", self.mem.hit_rate() * 100.0)
        };
        format!(
            "{} cycles{} | {} instrs | {} spec loads, {} rollbacks, {} reissues | {} prefetches ({} useful) | hit rate {}",
            self.cycles,
            status,
            self.total.committed,
            self.total.speculative_loads,
            self.total.rollbacks,
            self.total.reissues,
            self.mem.prefetches_issued,
            self.mem.prefetches_useful,
            hit_rate,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_key_numbers() {
        let r = RunReport {
            cycles: 103,
            timed_out: false,
            failure: None,
            per_proc: vec![],
            total: ProcStats {
                committed: 6,
                ..Default::default()
            },
            mem: MemStats::default(),
            regfiles: vec![],
            trace: vec![],
            trace_dropped: 0,
            memory: BTreeMap::new(),
        };
        let s = r.summary();
        assert!(s.contains("103 cycles"));
        assert!(s.contains("6 instrs"));
        assert!(!s.contains("TIMED OUT"));
        assert!(
            s.contains("hit rate n/a"),
            "no demand accesses must not read as 0.0%: {s}"
        );
    }

    #[test]
    fn summary_reports_real_hit_rate_when_accesses_exist() {
        let r = RunReport {
            cycles: 10,
            timed_out: false,
            failure: None,
            per_proc: vec![],
            total: ProcStats::default(),
            mem: MemStats {
                demand_hits: 1,
                demand_misses: 3,
                ..Default::default()
            },
            regfiles: vec![],
            trace: vec![],
            trace_dropped: 0,
            memory: BTreeMap::new(),
        };
        assert!(r.summary().contains("hit rate 25.0%"), "{}", r.summary());
    }

    #[test]
    fn mem_word_defaults_to_zero() {
        let r = RunReport {
            cycles: 0,
            timed_out: false,
            failure: None,
            per_proc: vec![],
            total: ProcStats::default(),
            mem: MemStats::default(),
            regfiles: vec![],
            trace: vec![],
            trace_dropped: 0,
            memory: BTreeMap::from([(8, 5)]),
        };
        assert_eq!(r.mem_word(8), 5);
        assert_eq!(r.mem_word(16), 0);
    }
}
