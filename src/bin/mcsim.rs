//! The `mcsim` command-line runner: assemble one or more `.s` files (one
//! per processor) and simulate them under a chosen consistency model and
//! technique combination.
//!
//! ```sh
//! mcsim run examples/asm/producer.s examples/asm/consumer.s \
//!     --model SC --techniques both --trace
//! mcsim matrix examples/asm/producer.s     # full model x technique table
//! mcsim asm examples/asm/producer.s        # assemble + disassemble check
//! ```
//!
//! Argument parsing is hand-rolled (the project's dependency policy keeps
//! the tree to the sanctioned crates); see `mcsim --help`.

use mcsim::sim::{format_table, run_matrix, Machine, MachineConfig, RunReport, SimError};
use mcsim_consistency::Model;
use mcsim_isa::asm;
use mcsim_isa::Program;
use mcsim_proc::{CoreEvent, Techniques};
use serde::Serialize;
use std::process::ExitCode;

const HELP: &str = "\
mcsim — cycle-accurate simulator for 'Two Techniques to Enhance the
Performance of Memory Consistency Models' (ICPP 1991)

USAGE:
    mcsim run <program.s>... [OPTIONS]     simulate (one program per processor)
    mcsim matrix <program.s>...            run the full model x technique matrix
    mcsim asm <program.s>                  assemble and echo the program
    mcsim models                           list supported consistency models

OPTIONS (run):
    --model <SC|PC|WC|RCsc|RC>    consistency model        [default: SC]
    --techniques <base|prefetch|spec|both>                 [default: both]
    --protocol <invalidate|update>                         [default: invalidate]
    --miss <cycles>               clean-miss latency (even) [default: 100]
    --rob <n>                     reorder-buffer entries    [default: 64]
    --max-cycles <n>              cycle budget              [default: 2000000]
    --mem <addr>=<value>          initial memory word (repeatable, hex ok)
    --invariants <n|off>          invariant-check period in cycles; 0 = auto
                                  (every cycle in debug / strict builds,
                                  every 1024 in release)    [default: 0]
    --inject <fault>              inject a deterministic protocol fault:
                                  drop-inv[:n], corrupt[:n], stuck-mshr[:n]
    --dump-on-failure <path>      write a JSON crash snapshot (failure,
                                  summary, trace tail) if the run fails;
                                  implies tracing
    --no-fast-forward             step every cycle instead of skipping
                                  quiescent spans (slower; the report is
                                  bit-identical either way)
    --trace                       print the event trace
    --timeline                    print a Gantt timeline of memory ops
    --breakdown                   print the per-cause execution-time
                                  breakdown (stacked bars, paper Section 5)
    --json                        print the full report as JSON
";

/// Trace events per processor kept in a `--dump-on-failure` snapshot.
const DUMP_TRACE_TAIL: usize = 64;

/// The `--dump-on-failure` crash snapshot: the structured failure plus
/// enough context (summary, the tail of each core's event trace) to
/// diagnose it without re-running. Owned because the offline serde
/// stand-in cannot derive for generic (borrowing) types.
#[derive(Serialize)]
struct CrashDump {
    summary: String,
    cycles: u64,
    timed_out: bool,
    failure: Option<SimError>,
    /// Last [`DUMP_TRACE_TAIL`] trace events of each core.
    trace_tail: Vec<Vec<CoreEvent>>,
}

fn write_crash_dump(path: &str, report: &RunReport) -> Result<(), String> {
    let dump = CrashDump {
        summary: report.summary(),
        cycles: report.cycles,
        timed_out: report.timed_out,
        failure: report.failure.clone(),
        trace_tail: report
            .traces
            .iter()
            .map(|t| t[t.len().saturating_sub(DUMP_TRACE_TAIL)..].to_vec())
            .collect(),
    };
    let json = serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("mcsim: crash snapshot written to {path}");
    Ok(())
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("mcsim: {msg}");
    eprintln!("run `mcsim --help` for usage");
    ExitCode::FAILURE
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn load_programs(paths: &[String]) -> Result<Vec<Program>, String> {
    if paths.is_empty() {
        return Err("no program files given".into());
    }
    paths
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let name = p.rsplit('/').next().unwrap_or(p).trim_end_matches(".s");
            asm::assemble(name, &src).map_err(|e| format!("{p}: {e}"))
        })
        .collect()
}

struct RunOpts {
    files: Vec<String>,
    cfg: MachineConfig,
    mem_init: Vec<(u64, u64)>,
    trace: bool,
    timeline: bool,
    breakdown: bool,
    json: bool,
    no_fast_forward: bool,
    dump_on_failure: Option<String>,
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        files: Vec::new(),
        cfg: MachineConfig::paper_with(Model::Sc, Techniques::BOTH),
        mem_init: Vec::new(),
        trace: false,
        timeline: false,
        breakdown: false,
        json: false,
        no_fast_forward: false,
        dump_on_failure: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--model" => o.cfg.model = value("--model")?.parse::<Model>()?,
            "--techniques" => {
                o.cfg.techniques = match value("--techniques")?.as_str() {
                    "base" | "none" => Techniques::NONE,
                    "prefetch" | "pf" => Techniques::PREFETCH,
                    "spec" | "speculation" => Techniques::SPECULATION,
                    "both" | "pf+spec" => Techniques::BOTH,
                    other => return Err(format!("unknown techniques `{other}`")),
                }
            }
            "--protocol" => {
                o.cfg.mem.protocol = match value("--protocol")?.as_str() {
                    "invalidate" | "inv" => mcsim_mem::Protocol::Invalidate,
                    "update" => mcsim_mem::Protocol::Update,
                    other => return Err(format!("unknown protocol `{other}`")),
                }
            }
            "--miss" => {
                let m = parse_u64(&value("--miss")?).ok_or("bad --miss value")?;
                o.cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(m);
            }
            "--rob" => {
                o.cfg.proc.rob_size =
                    parse_u64(&value("--rob")?).ok_or("bad --rob value")? as usize;
            }
            "--max-cycles" => {
                o.cfg.max_cycles = parse_u64(&value("--max-cycles")?).ok_or("bad --max-cycles")?;
            }
            "--mem" => {
                let v = value("--mem")?;
                let (a, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--mem expects addr=value, got `{v}`"))?;
                o.mem_init.push((
                    parse_u64(a).ok_or("bad --mem address")?,
                    parse_u64(val).ok_or("bad --mem value")?,
                ));
            }
            "--invariants" => {
                let v = value("--invariants")?;
                o.cfg.guard.invariant_period = if v == "off" {
                    u64::MAX
                } else {
                    parse_u64(&v).ok_or("bad --invariants value")?
                };
            }
            "--inject" => {
                o.cfg.guard.fault = Some(value("--inject")?.parse()?);
            }
            "--dump-on-failure" => {
                o.cfg.trace = true; // the snapshot wants the trace tail
                o.dump_on_failure = Some(value("--dump-on-failure")?);
            }
            "--trace" => {
                o.cfg.trace = true;
                o.trace = true;
            }
            "--timeline" => {
                o.cfg.trace = true;
                o.timeline = true;
            }
            "--breakdown" => o.breakdown = true,
            "--json" => o.json = true,
            "--no-fast-forward" => o.no_fast_forward = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            file => o.files.push(file.to_string()),
        }
    }
    o.cfg.proc.techniques = o.cfg.techniques;
    Ok(o)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_run_opts(args)?;
    let programs = load_programs(&o.files)?;
    let mut m = Machine::new(o.cfg, programs);
    m.set_fast_forward(!o.no_fast_forward);
    for (a, v) in &o.mem_init {
        m.write_memory(*a, *v);
    }
    let report = m.run();
    if report.failure.is_some() || report.timed_out {
        if let Some(path) = &o.dump_on_failure {
            write_crash_dump(path, &report)?;
        }
    }
    if o.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if o.trace {
        for (p, t) in report.traces.iter().enumerate() {
            for e in t {
                println!(
                    "proc {p} cycle {:>6} [pc {:>3}] {:?}",
                    e.cycle, e.pc, e.kind
                );
            }
        }
    }
    if o.timeline {
        print!("{}", mcsim::sim::render_timeline(&report.traces, 72));
    }
    if o.breakdown {
        print!("{}", mcsim::sim::render_breakdown(&report, 72));
    }
    println!(
        "{} / {}: {}",
        o.cfg.model,
        o.cfg.techniques.label(),
        report.summary()
    );
    for (p, rf) in report.regfiles.iter().enumerate() {
        let regs: Vec<String> = rf
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(r, v)| format!("{r}={v:#x}"))
            .collect();
        println!("proc {p} registers: {}", regs.join(" "));
    }
    if let Some(failure) = &report.failure {
        return Err(failure.to_string());
    }
    if report.timed_out {
        return Err(format!("timed out after {} cycles", report.cycles));
    }
    Ok(())
}

fn cmd_matrix(args: &[String]) -> Result<(), String> {
    let o = parse_run_opts(args)?;
    let programs = load_programs(&o.files)?;
    let mem_init = o.mem_init.clone();
    let rows = run_matrix(
        &o.cfg,
        &Model::ALL_EXTENDED,
        &Techniques::ALL,
        || programs.clone(),
        |m| {
            for (a, v) in &mem_init {
                m.write_memory(*a, *v);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{}",
        format_table("model x technique matrix (cycles)", &rows)
    );
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let programs = load_programs(args)?;
    for p in &programs {
        println!("{p}");
        println!("round-trip:\n{}", asm::disassemble(p));
    }
    Ok(())
}

fn cmd_models() {
    for m in Model::ALL_EXTENDED {
        println!("{:<5} {}", m.name(), m.description());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help" | "-h" | "help") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some("models") => {
            cmd_models();
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("matrix") => match cmd_matrix(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("asm") => match cmd_asm(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some(other) => fail(&format!("unknown command `{other}`")),
    }
}
