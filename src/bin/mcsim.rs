//! The `mcsim` command-line runner: assemble one or more `.s` files (one
//! per processor) and simulate them under a chosen consistency model and
//! technique combination.
//!
//! ```sh
//! mcsim run examples/asm/producer.s examples/asm/consumer.s \
//!     --model SC --techniques both --trace out.json
//! mcsim run --workload figure5 --trace fig5.txt --trace-format fig5
//! mcsim matrix examples/asm/producer.s     # full model x technique table
//! mcsim asm examples/asm/producer.s        # assemble + disassemble check
//! ```
//!
//! Argument parsing is hand-rolled (the project's dependency policy keeps
//! the tree to the sanctioned crates); see `mcsim --help`.

use mcsim::sim::{
    conformance_config, format_table, run_matrix, Machine, MachineConfig, RunReport, SimError,
};
use mcsim::trace::{chrome, csv, fig5, TraceEvent, TraceFilter};
use mcsim::workloads::{litmus, paper};
use mcsim_consistency::Model;
use mcsim_isa::asm;
use mcsim_isa::Program;
use mcsim_proc::Techniques;
use serde::Serialize;
use std::process::ExitCode;

const HELP: &str = "\
mcsim — cycle-accurate simulator for 'Two Techniques to Enhance the
Performance of Memory Consistency Models' (ICPP 1991)

USAGE:
    mcsim run <program.s>... [OPTIONS]     simulate (one program per processor)
    mcsim run --workload <name> [OPTIONS]  simulate a built-in paper workload
    mcsim matrix <program.s>...            run the full model x technique matrix
    mcsim asm <program.s>                  assemble and echo the program
    mcsim check-json <file>                validate that a file parses as JSON
    mcsim models                           list supported consistency models
    mcsim oracle print                     allowed-outcome sets of the litmus
                                           corpus under every model (golden text)
    mcsim oracle enumerate <program.s>... [--model M] [--mem addr=value]
                                           enumerate the allowed final states
    mcsim oracle check [--seeds <n>]       simulate the corpus across every
                                           model x technique combination and
                                           assert outcomes are oracle-allowed
    mcsim oracle check-report <file.json> --litmus <name> [--model M]
                                           check a saved RunReport against the
                                           allowed set of a corpus litmus

OPTIONS (run):
    --model <SC|TSO|PC|PSO|WC|RCsc|RC>  consistency model  [default: SC]
    --techniques <base|prefetch|spec|both>                 [default: both]
    --protocol <invalidate|update>                         [default: invalidate]
    --miss <cycles>               clean-miss latency (even) [default: 100]
    --rob <n>                     reorder-buffer entries    [default: 64]
    --max-cycles <n>              cycle budget              [default: 2000000]
    --mem <addr>=<value>          initial memory word (repeatable, hex ok)
    --workload <name>             built-in workload instead of .s files:
                                  figure5 (main + antagonist, primed caches),
                                  example1, example2
    --litmus <name>               run a conformance-corpus litmus instead of
                                  .s files (store-buffering, message-passing,
                                  load-buffering, iriw, coherence-rr, 2+2w)
    --invariants <n|off>          invariant-check period in cycles; 0 = auto
                                  (every cycle in debug / strict builds,
                                  every 1024 in release)    [default: 0]
    --inject <fault>              inject a deterministic protocol fault:
                                  drop-inv[:n], corrupt[:n], stuck-mshr[:n]
    --dump-on-failure <path>      write a JSON crash snapshot (failure,
                                  summary, trace tail) if the run fails;
                                  implies tracing
    --no-fast-forward             step every cycle instead of skipping
                                  quiescent spans (slower; the report is
                                  bit-identical either way)
    --trace <path>                write the event trace to <path> ('-' for
                                  stdout); enables tracing
    --trace-format <fmt>          trace export format: chrome (Perfetto-
                                  loadable JSON), fig5 (plaintext buffer
                                  timeline), csv        [default: chrome]
    --trace-cycles <A..B>         keep only events with A <= cycle <= B
    --trace-proc <n>              keep only events of processor n
    --timeline                    print a Gantt timeline of memory ops
    --breakdown                   print the per-cause execution-time
                                  breakdown (stacked bars, paper Section 5)
    --json                        print the full report as JSON
";

/// Merged trace events kept in a `--dump-on-failure` snapshot.
const DUMP_TRACE_TAIL: usize = 256;

/// The `--dump-on-failure` crash snapshot: the structured failure plus
/// enough context (summary, the tail of the merged event trace) to
/// diagnose it without re-running. Owned because the offline serde
/// stand-in cannot derive for generic (borrowing) types.
#[derive(Serialize)]
struct CrashDump {
    summary: String,
    cycles: u64,
    timed_out: bool,
    failure: Option<SimError>,
    /// Events evicted from the bounded rings before the run stopped.
    trace_dropped: u64,
    /// Last [`DUMP_TRACE_TAIL`] events of the merged machine trace.
    trace_tail: Vec<TraceEvent>,
}

fn write_crash_dump(path: &str, report: &RunReport) -> Result<(), String> {
    let tail = &report.trace[report.trace.len().saturating_sub(DUMP_TRACE_TAIL)..];
    let dump = CrashDump {
        summary: report.summary(),
        cycles: report.cycles,
        timed_out: report.timed_out,
        failure: report.failure.clone(),
        trace_dropped: report.trace_dropped,
        trace_tail: tail.to_vec(),
    };
    let json = serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("mcsim: crash snapshot written to {path}");
    Ok(())
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("mcsim: {msg}");
    eprintln!("run `mcsim --help` for usage");
    ExitCode::FAILURE
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn load_programs(paths: &[String]) -> Result<Vec<Program>, String> {
    if paths.is_empty() {
        return Err("no program files given".into());
    }
    paths
        .iter()
        .map(|p| {
            let src = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let name = p.rsplit('/').next().unwrap_or(p).trim_end_matches(".s");
            asm::assemble(name, &src).map_err(|e| format!("{p}: {e}"))
        })
        .collect()
}

/// Built-in paper workloads (`--workload`), so the canonical figures can
/// be traced without shipping assembly files.
#[derive(Debug, Clone, Copy)]
enum Workload {
    /// Figure 5's two-processor segment with the canonical antagonist
    /// timing (delay 50, new D = 5) and primed caches.
    Figure5,
    /// Figure 2 example 1 (the producer), single processor.
    Example1,
    /// Figure 2 example 2 (the consumer), `D` pre-cached.
    Example2,
}

/// The antagonist parameters behind `--workload figure5` — the same pair
/// the Figure 5 integration test pins.
const FIG5_DELAY: u32 = 50;
const FIG5_NEW_D: u64 = 5;

impl Workload {
    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "figure5" | "fig5" => Ok(Workload::Figure5),
            "example1" | "ex1" => Ok(Workload::Example1),
            "example2" | "ex2" => Ok(Workload::Example2),
            other => Err(format!(
                "unknown workload `{other}` (try figure5, example1, example2)"
            )),
        }
    }

    fn programs(self) -> Vec<Program> {
        match self {
            Workload::Figure5 => vec![
                paper::figure5_main(),
                paper::figure5_antagonist(FIG5_DELAY, FIG5_NEW_D),
            ],
            Workload::Example1 => vec![paper::example1()],
            Workload::Example2 => vec![paper::example2()],
        }
    }

    fn setup(self, m: &mut Machine) {
        match self {
            Workload::Figure5 => paper::setup_figure5(m, FIG5_NEW_D),
            Workload::Example1 => {}
            Workload::Example2 => paper::setup_example2(m),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
enum TraceFormat {
    #[default]
    Chrome,
    Fig5,
    Csv,
}

impl TraceFormat {
    fn parse(name: &str) -> Result<Self, String> {
        match name {
            "chrome" => Ok(TraceFormat::Chrome),
            "fig5" => Ok(TraceFormat::Fig5),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!(
                "unknown trace format `{other}` (try chrome, fig5, csv)"
            )),
        }
    }

    fn render(self, events: &[TraceEvent], filter: &TraceFilter) -> String {
        match self {
            TraceFormat::Chrome => chrome::render(events, filter),
            TraceFormat::Fig5 => fig5::render(events, filter),
            TraceFormat::Csv => csv::render(events, filter),
        }
    }
}

struct RunOpts {
    files: Vec<String>,
    workload: Option<Workload>,
    litmus: Option<litmus::Litmus>,
    cfg: MachineConfig,
    mem_init: Vec<(u64, u64)>,
    trace_path: Option<String>,
    trace_format: TraceFormat,
    trace_filter: TraceFilter,
    timeline: bool,
    breakdown: bool,
    json: bool,
    no_fast_forward: bool,
    dump_on_failure: Option<String>,
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        files: Vec::new(),
        workload: None,
        litmus: None,
        cfg: MachineConfig::paper_with(Model::Sc, Techniques::BOTH),
        mem_init: Vec::new(),
        trace_path: None,
        trace_format: TraceFormat::default(),
        trace_filter: TraceFilter::default(),
        timeline: false,
        breakdown: false,
        json: false,
        no_fast_forward: false,
        dump_on_failure: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--model" => o.cfg.model = value("--model")?.parse::<Model>()?,
            "--techniques" => {
                o.cfg.techniques = match value("--techniques")?.as_str() {
                    "base" | "none" => Techniques::NONE,
                    "prefetch" | "pf" => Techniques::PREFETCH,
                    "spec" | "speculation" => Techniques::SPECULATION,
                    "both" | "pf+spec" => Techniques::BOTH,
                    other => return Err(format!("unknown techniques `{other}`")),
                }
            }
            "--protocol" => {
                o.cfg.mem.protocol = match value("--protocol")?.as_str() {
                    "invalidate" | "inv" => mcsim_mem::Protocol::Invalidate,
                    "update" => mcsim_mem::Protocol::Update,
                    other => return Err(format!("unknown protocol `{other}`")),
                }
            }
            "--miss" => {
                let m = parse_u64(&value("--miss")?).ok_or("bad --miss value")?;
                o.cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(m);
            }
            "--rob" => {
                o.cfg.proc.rob_size =
                    parse_u64(&value("--rob")?).ok_or("bad --rob value")? as usize;
            }
            "--max-cycles" => {
                o.cfg.max_cycles = parse_u64(&value("--max-cycles")?).ok_or("bad --max-cycles")?;
            }
            "--mem" => {
                let v = value("--mem")?;
                let (a, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--mem expects addr=value, got `{v}`"))?;
                o.mem_init.push((
                    parse_u64(a).ok_or("bad --mem address")?,
                    parse_u64(val).ok_or("bad --mem value")?,
                ));
            }
            "--workload" => o.workload = Some(Workload::parse(&value("--workload")?)?),
            "--litmus" => {
                let name = value("--litmus")?;
                let corpus = litmus::conformance_corpus();
                o.litmus = Some(corpus.iter().find(|l| l.name == name).cloned().ok_or_else(
                    || {
                        let names: Vec<&str> = corpus.iter().map(|l| l.name).collect();
                        format!("unknown litmus `{name}` (corpus: {})", names.join(", "))
                    },
                )?);
            }
            "--invariants" => {
                let v = value("--invariants")?;
                o.cfg.guard.invariant_period = if v == "off" {
                    u64::MAX
                } else {
                    parse_u64(&v).ok_or("bad --invariants value")?
                };
            }
            "--inject" => {
                o.cfg.guard.fault = Some(value("--inject")?.parse()?);
            }
            "--dump-on-failure" => {
                o.cfg.trace = true; // the snapshot wants the trace tail
                o.dump_on_failure = Some(value("--dump-on-failure")?);
            }
            "--trace" => {
                o.cfg.trace = true;
                o.trace_path = Some(value("--trace")?);
            }
            "--trace-format" => o.trace_format = TraceFormat::parse(&value("--trace-format")?)?,
            "--trace-cycles" => {
                let v = value("--trace-cycles")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--trace-cycles expects A..B, got `{v}`"))?;
                o.trace_filter.cycles = Some((
                    parse_u64(a).ok_or("bad --trace-cycles start")?,
                    parse_u64(b).ok_or("bad --trace-cycles end")?,
                ));
            }
            "--trace-proc" => {
                o.trace_filter.proc =
                    Some(parse_u64(&value("--trace-proc")?).ok_or("bad --trace-proc")? as usize);
            }
            "--timeline" => {
                o.cfg.trace = true;
                o.timeline = true;
            }
            "--breakdown" => o.breakdown = true,
            "--json" => o.json = true,
            "--no-fast-forward" => o.no_fast_forward = true,
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            file => o.files.push(file.to_string()),
        }
    }
    o.cfg.proc.techniques = o.cfg.techniques;
    let sources = usize::from(o.workload.is_some())
        + usize::from(o.litmus.is_some())
        + usize::from(!o.files.is_empty());
    if sources > 1 {
        return Err("give one of --workload, --litmus, or program files".into());
    }
    Ok(o)
}

impl RunOpts {
    fn programs(&self) -> Result<Vec<Program>, String> {
        if let Some(l) = &self.litmus {
            return Ok(l.programs.clone());
        }
        match self.workload {
            Some(w) => Ok(w.programs()),
            None => load_programs(&self.files),
        }
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let o = parse_run_opts(args)?;
    let programs = o.programs()?;
    let mut m = Machine::new(o.cfg, programs);
    m.set_fast_forward(!o.no_fast_forward);
    if let Some(w) = o.workload {
        w.setup(&mut m);
    }
    if let Some(l) = &o.litmus {
        for (a, v) in &l.init {
            m.write_memory(*a, *v);
        }
    }
    for (a, v) in &o.mem_init {
        m.write_memory(*a, *v);
    }
    let report = m.run();
    if report.failure.is_some() || report.timed_out {
        if let Some(path) = &o.dump_on_failure {
            write_crash_dump(path, &report)?;
        }
    }
    if let Some(path) = &o.trace_path {
        let rendered = o.trace_format.render(&report.trace, &o.trace_filter);
        if path == "-" {
            print!("{rendered}");
        } else {
            std::fs::write(path, rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("mcsim: trace written to {path}");
        }
    }
    if o.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if o.timeline {
        print!("{}", mcsim::sim::render_timeline(&report.trace, 72));
    }
    if o.breakdown {
        print!("{}", mcsim::sim::render_breakdown(&report, 72));
    }
    println!(
        "{} / {}: {}",
        o.cfg.model,
        o.cfg.techniques.label(),
        report.summary()
    );
    for (p, rf) in report.regfiles.iter().enumerate() {
        let regs: Vec<String> = rf
            .iter()
            .filter(|(_, v)| *v != 0)
            .map(|(r, v)| format!("{r}={v:#x}"))
            .collect();
        println!("proc {p} registers: {}", regs.join(" "));
    }
    if let Some(failure) = &report.failure {
        return Err(failure.to_string());
    }
    if report.timed_out {
        return Err(format!("timed out after {} cycles", report.cycles));
    }
    Ok(())
}

fn cmd_matrix(args: &[String]) -> Result<(), String> {
    let o = parse_run_opts(args)?;
    let programs = o.programs()?;
    let mem_init = o.mem_init.clone();
    let workload = o.workload;
    let rows = run_matrix(
        &o.cfg,
        &Model::ALL_EXTENDED,
        &Techniques::ALL,
        || programs.clone(),
        |m| {
            if let Some(w) = workload {
                w.setup(m);
            }
            for (a, v) in &mem_init {
                m.write_memory(*a, *v);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{}",
        format_table("model x technique matrix (cycles)", &rows)
    );
    Ok(())
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let programs = load_programs(args)?;
    for p in &programs {
        println!("{p}");
        println!("round-trip:\n{}", asm::disassemble(p));
    }
    Ok(())
}

/// `mcsim check-json <file>` — the CI helper that asserts an exported
/// trace (or any artifact) is a well-formed JSON document.
fn cmd_check_json(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("check-json expects exactly one file".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    println!("{path}: valid JSON ({} bytes)", text.len());
    Ok(())
}

/// `mcsim oracle ...` — front-end for the execution-enumeration oracle.
fn cmd_oracle(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("print") => {
            print!(
                "{}",
                litmus::render_allowed_sets(&litmus::conformance_corpus())
            );
            Ok(())
        }
        Some("enumerate") => cmd_oracle_enumerate(&args[1..]),
        Some("check") => cmd_oracle_check(&args[1..]),
        Some("check-report") => cmd_oracle_check_report(&args[1..]),
        _ => Err("oracle expects a mode: print, enumerate, check, check-report".into()),
    }
}

fn cmd_oracle_enumerate(args: &[String]) -> Result<(), String> {
    let mut files = Vec::new();
    let mut model = Model::Sc;
    let mut mem_init: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--model" => model = value("--model")?.parse::<Model>()?,
            "--mem" => {
                let v = value("--mem")?;
                let (addr, val) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--mem expects addr=value, got `{v}`"))?;
                mem_init.insert(
                    parse_u64(addr).ok_or("bad --mem address")?,
                    parse_u64(val).ok_or("bad --mem value")?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            file => files.push(file.to_string()),
        }
    }
    let programs = load_programs(&files)?;
    let r = mcsim::oracle::outcomes(
        model,
        &programs,
        &mem_init,
        mcsim::oracle::OracleConfig::default(),
    );
    if !r.complete {
        return Err("state budget exceeded; outcome set would be incomplete".into());
    }
    println!("{} allowed final states under {}:", r.outcomes.len(), model);
    print!("{}", mcsim::oracle::format_outcomes(&r.outcomes));
    Ok(())
}

fn cmd_oracle_check(args: &[String]) -> Result<(), String> {
    let mut seeds = 4u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                seeds = parse_u64(v).ok_or("bad --seeds value")?.max(1);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let corpus = litmus::conformance_corpus();
    let mut cells = 0u64;
    for l in &corpus {
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                for seed in 0..seeds {
                    let report = l.run(conformance_config(model, t, seed));
                    if let Some(failure) = &report.failure {
                        return Err(format!(
                            "{} @ {model}/{} seed {seed}: {failure}",
                            l.name,
                            t.label()
                        ));
                    }
                    if !l.is_allowed_under(model, &report) {
                        return Err(format!(
                            "{} @ {model}/{} seed {seed}: final state not in the allowed set",
                            l.name,
                            t.label()
                        ));
                    }
                    cells += 1;
                }
            }
        }
    }
    println!(
        "oracle check: {cells} runs ({} litmus x {} models x {} techniques x {seeds} seeds) all conformant",
        corpus.len(),
        Model::ALL_EXTENDED.len(),
        Techniques::ALL.len()
    );
    Ok(())
}

fn cmd_oracle_check_report(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut name = None;
    let mut model = Model::Sc;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--litmus" => name = Some(value("--litmus")?),
            "--model" => model = value("--model")?.parse::<Model>()?,
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            file => path = Some(file.to_string()),
        }
    }
    let path = path.ok_or("check-report expects a RunReport JSON file")?;
    let name = name.ok_or("check-report needs --litmus <name>")?;
    let corpus = litmus::conformance_corpus();
    let l = corpus.iter().find(|l| l.name == name).ok_or_else(|| {
        let names: Vec<&str> = corpus.iter().map(|l| l.name).collect();
        format!("unknown litmus `{name}` (corpus: {})", names.join(", "))
    })?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let report: RunReport =
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid RunReport: {e}"))?;
    if l.is_allowed_under(model, &report) {
        println!("{path}: final state allowed for `{name}` under {model}");
        Ok(())
    } else {
        Err(format!(
            "{path}: final state NOT allowed for `{name}` under {model}"
        ))
    }
}

fn cmd_models() {
    for m in Model::ALL_EXTENDED {
        println!("{:<5} {}", m.name(), m.description());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help" | "-h" | "help") => {
            print!("{HELP}");
            ExitCode::SUCCESS
        }
        Some("models") => {
            cmd_models();
            ExitCode::SUCCESS
        }
        Some("run") => match cmd_run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("matrix") => match cmd_matrix(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("asm") => match cmd_asm(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("check-json") => match cmd_check_json(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some("oracle") => match cmd_oracle(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some(other) => fail(&format!("unknown command `{other}`")),
    }
}
