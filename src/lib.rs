//! # mcsim — prefetching and speculative loads for memory consistency models
//!
//! A cycle-accurate shared-memory multiprocessor simulator reproducing
//! *Gharachorloo, Gupta & Hennessy, "Two Techniques to Enhance the
//! Performance of Memory Consistency Models", ICPP 1991*.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`isa`] — the mini shared-memory ISA, program builder, assembler.
//! * [`consistency`] — SC / PC / WC / RC delay-arc ordering rules.
//! * [`mem`] — lockup-free caches, directory coherence, timing model.
//! * [`proc`] — the out-of-order core: reorder buffer, store buffer,
//!   speculative-load buffer, hardware prefetch unit.
//! * [`trace`] — the structured event taxonomy, bounded ring sink, and
//!   the Chrome / Figure-5 / CSV exporters.
//! * [`sim`] — the multiprocessor machine, statistics, event traces, the
//!   experiment harness.
//! * [`oracle`] — the per-model execution-enumeration oracle: the
//!   complete allowed-outcome sets litmus conformance is checked against.
//! * [`guard`] — runtime verification: structured simulation errors,
//!   invariant checks, the forward-progress watchdog, fault injection.
//! * [`workloads`] — paper examples, litmus tests, and generators.
//!
//! ## Quickstart
//!
//! ```
//! use mcsim::prelude::*;
//!
//! // Example 1 of the paper: a producer updating two locations inside a
//! // critical section. Under conventional SC it takes 301 cycles; with
//! // both techniques, 103.
//! let program = mcsim::workloads::paper::example1();
//! let cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
//! let report = Machine::new(cfg, vec![program]).run();
//! assert!(report.cycles < 301);
//! ```

#![forbid(unsafe_code)]

pub use mcsim_consistency as consistency;
pub use mcsim_core as sim;
pub use mcsim_guard as guard;
pub use mcsim_isa as isa;
pub use mcsim_mem as mem;
pub use mcsim_oracle as oracle;
pub use mcsim_proc as proc;
pub use mcsim_trace as trace;
pub use mcsim_workloads as workloads;

/// Convenience re-exports of the types most programs need.
pub mod prelude {
    pub use mcsim_consistency::{AccessClass, Model};
    pub use mcsim_core::{Machine, MachineConfig, RunReport};
    pub use mcsim_isa::{Program, ProgramBuilder};
    pub use mcsim_proc::Techniques;
}
