#!/usr/bin/env bash
# Crash-safety acceptance: kill a journaled sweep mid-flight, resume it,
# and require the merged artifacts to be byte-identical to an
# uninterrupted run; then check process isolation and the bounded-retry
# path end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

# Build first and run the binary directly: SIGKILLing a `cargo run`
# wrapper would orphan the actual simulator process.
cargo build --release -p mcsim-sweep
BIN=target/release/mcsim-sweep

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== reference: uninterrupted run =="
"$BIN" --builtin e6-equalization --jobs 4 --quiet \
  --json "$work/ref.json" --csv "$work/ref.csv"

echo "== journaled run, SIGKILLed mid-flight =="
"$BIN" --builtin e6-equalization --jobs 1 --quiet --no-fast-forward \
  --journal "$work/run.jsonl" &
pid=$!
# Wait until at least a couple of points are journaled, then kill -9.
for _ in $(seq 1 100); do
  [ -f "$work/run.jsonl" ] && [ "$(wc -l < "$work/run.jsonl")" -ge 3 ] && break
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# The grid is small enough that the run may have finished before the
# kill landed; chop the journal down so the resume always has real work
# left (head also discards any torn trailing line from the kill).
lines=$(wc -l < "$work/run.jsonl")
points=$((lines - 1))
echo "journal holds $points completed point(s) after the kill"
if [ "$lines" -gt 40 ]; then
  head -n 40 "$work/run.jsonl" > "$work/run.trunc" && mv "$work/run.trunc" "$work/run.jsonl"
  echo "truncated journal to 39 points to force a real resume"
fi

echo "== resume and compare =="
"$BIN" --builtin e6-equalization --jobs 4 --quiet \
  --resume "$work/run.jsonl" --json "$work/resumed.json" --csv "$work/resumed.csv"
cmp "$work/ref.json" "$work/resumed.json"
cmp "$work/ref.csv" "$work/resumed.csv"
echo "OK: resumed artifacts byte-identical to the uninterrupted run"

echo "== process isolation determinism =="
"$BIN" --builtin e6-equalization --jobs 4 --quiet --isolate process \
  --json "$work/proc.json"
cmp "$work/ref.json" "$work/proc.json"
echo "OK: --isolate process artifact byte-identical to thread mode"

echo "== injected protocol fault: deterministic failures, no retry =="
"$BIN" --builtin e7-speculation --quiet --isolate process --retries 3 \
  --inject drop-inv:1 --json "$work/inject.json"
grep -q '"Failed"' "$work/inject.json"
if grep -q '"attempts": [^1]' "$work/inject.json"; then
  echo "ERROR: a deterministic failure consumed a retry"; exit 1
fi
echo "OK: injected faults recorded as failed cells on attempt 1"

echo "== transient worker loss: bounded retry recovers =="
MCSIM_SWEEP_TEST_ABORT=2 "$BIN" --builtin e13-window --quiet \
  --isolate process --retries 3 --json "$work/retry.json"
if grep -q '"Crashed"' "$work/retry.json"; then
  echo "ERROR: retry failed to recover an aborting worker"; exit 1
fi
n=$(grep -c '"attempts": 2' "$work/retry.json")
[ "$n" -eq 6 ] || { echo "ERROR: expected 6 retried points, saw $n"; exit 1; }
echo "OK: every aborted worker recovered on attempt 2"
